module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Branch_bound = Ras_mip.Branch_bound

type params = {
  formulation : Formulation.params;
  phase1_time_limit_s : float;
  phase2_time_limit_s : float;
  node_limit : int;
  mip_gap_rel : float;
  mip_stall_nodes : int;
  run_phase2 : bool;
  phase2_fraction : float;
  phase2_var_cap : int;
  decompose : int option;
}

let default_params =
  {
    formulation = Formulation.default_params;
    phase1_time_limit_s = 10.0;
    phase2_time_limit_s = 5.0;
    node_limit = 300;
    mip_gap_rel = Branch_bound.default_options.Branch_bound.gap_rel;
    mip_stall_nodes = 0;
    run_phase2 = true;
    phase2_fraction = 0.1;
    phase2_var_cap = 6000;
    decompose = None;
  }

type stats = {
  phase1 : Phases.result;
  phase2 : Phases.result option;
  plan : Concretize.plan;
  duration_s : float;
  shortfalls : (int * float) list;
  moves_in_use : int;
  moves_unused : int;
  gap_preemptions : float;
  proven_constraints_fixed : bool;
  solver_nodes : int;
  solver_lp_iterations : int;
  solver_warm_starts : int;
  solver_dual_restarts : int;
  solver_dual_pivots : int;
  solver_bland_pivots : int;
  decompose : Ras_mip.Decompose.stats option;
  incremental : Solver_state.round_stats option;
  price_table : Solver_state.price_table option;
}

let owner_of_res res =
  match res.Reservation.kind with
  | Reservation.Guaranteed -> Broker.Reservation res.Reservation.id
  | Reservation.Random_failure_buffer _ -> Broker.Shared_buffer

(* Rack-spread overflow of a reservation under a target map — the phase-2
   selection criterion ("reservations with the worst rack-level objectives
   are prioritized", §3.5.2). *)
let rack_overflow (snapshot : Snapshot.t) targets res =
  match res.Reservation.rack_spread_limit with
  | None -> 0.0
  | Some alpha_k ->
    let owner = owner_of_res res in
    let per_rack = Hashtbl.create 32 in
    Hashtbl.iter
      (fun id target ->
        if target = owner then begin
          let s = Snapshot.server snapshot id in
          let rru = res.Reservation.rru_of s.Region.hw in
          if rru > 0.0 then begin
            let rack = s.Region.loc.Region.rack in
            let cur = try Hashtbl.find per_rack rack with Not_found -> 0.0 in
            Hashtbl.replace per_rack rack (cur +. rru)
          end
        end)
      targets;
    let limit = alpha_k *. res.Reservation.capacity_rru in
    Hashtbl.fold (fun _ v acc -> acc +. Float.max 0.0 (v -. limit)) per_rack 0.0

let with_targets (snapshot : Snapshot.t) targets =
  let current = Array.copy snapshot.Snapshot.current in
  let in_use = Bytes.copy snapshot.Snapshot.in_use in
  Hashtbl.iter
    (fun id owner ->
      let code = Broker.owner_code owner in
      if current.(id) <> code then begin
        (* a moved server is preempted: it arrives idle *)
        current.(id) <- code;
        Bytes.set in_use id '\000'
      end)
    targets;
  { snapshot with Snapshot.current; in_use }

let solve ?(params = default_params) ?include_server ?state (snapshot : Snapshot.t) =
  let start = Unix.gettimeofday () in
  let reservations = snapshot.Snapshot.reservations in
  let phase1 =
    (* decomposition and cross-round state apply to phase 1 only: phase 2
       re-solves a small, rack-scoped slice with a per-round reservation
       selection, so neither the split overhead nor the cached basis can
       pay off there *)
    Phases.run ~params:params.formulation ~mip_time_limit:params.phase1_time_limit_s
      ~mip_node_limit:params.node_limit ~mip_gap_rel:params.mip_gap_rel
      ~mip_stall_nodes:params.mip_stall_nodes ~rack_level:false ?include_server
      ?decompose:params.decompose ?state snapshot reservations
  in
  let assignment1 = Formulation.decode phase1.Phases.formulation phase1.Phases.solution in
  let plan1 = Concretize.plan phase1.Phases.formulation assignment1 in
  let targets = Hashtbl.create 1024 in
  List.iter (fun (id, owner) -> Hashtbl.replace targets id owner) plan1.Concretize.targets;
  (* ---- phase 2: rack refinement for the worst reservations ---- *)
  let phase2 =
    if not params.run_phase2 then None
    else begin
      let scored =
        List.filter_map
          (fun res ->
            let overflow = rack_overflow snapshot targets res in
            if overflow > 1e-6 then Some (overflow, res) else None)
          reservations
      in
      if scored = [] then None
      else begin
        let scored = List.sort (fun (a, _) (b, _) -> compare b a) scored in
        let quota =
          Int.max 1 (int_of_float (params.phase2_fraction *. float_of_int (List.length reservations)))
        in
        let snapshot2_all = with_targets snapshot targets in
        (* accumulate reservations while the grouped-variable estimate stays
           under the cap (one variable per rack-level class x reservation) *)
        let selected = ref [] and var_estimate = ref 0 in
        List.iteri
          (fun i (_, res) ->
            if i < quota then begin
              let owner_code = Broker.owner_code (owner_of_res res) in
              let free_code = Broker.owner_code Broker.Free in
              let counted = ref 0 in
              for id = 0 to Snapshot.num_servers snapshot2_all - 1 do
                if Snapshot.usable_at snapshot2_all id then begin
                  let c = Snapshot.current_code snapshot2_all id in
                  if c = owner_code || c = free_code then incr counted
                end
              done;
              let server_count = !counted in
              (* rack-level classes are at worst one per server *)
              if !var_estimate + server_count <= params.phase2_var_cap then begin
                selected := res :: !selected;
                var_estimate := !var_estimate + server_count
              end
            end)
          scored;
        match !selected with
        | [] -> None
        | selected ->
          let owners = List.map owner_of_res selected in
          let user_filter =
            match include_server with Some f -> f | None -> fun _ -> true
          in
          let include_server (v : Snapshot.server_view) =
            (v.Snapshot.current = Broker.Free || List.mem v.Snapshot.current owners)
            && user_filter v
          in
          let result =
            Phases.run ~params:params.formulation
              ~mip_time_limit:params.phase2_time_limit_s ~mip_node_limit:params.node_limit
              ~mip_gap_rel:params.mip_gap_rel ~mip_stall_nodes:params.mip_stall_nodes
              ~rack_level:true ~include_server snapshot2_all selected
          in
          let assignment2 = Formulation.decode result.Phases.formulation result.Phases.solution in
          let plan2 = Concretize.plan result.Phases.formulation assignment2 in
          List.iter (fun (id, owner) -> Hashtbl.replace targets id owner) plan2.Concretize.targets;
          Some result
      end
    end
  in
  (* ---- merge: moves relative to the original snapshot ---- *)
  let moves = ref [] and target_list = ref [] in
  Hashtbl.iter
    (fun id owner ->
      target_list := (id, owner) :: !target_list;
      let current = Snapshot.current snapshot id in
      if current <> owner then
        moves :=
          {
            Concretize.server = id;
            from_ = current;
            to_ = owner;
            was_in_use = Snapshot.in_use_at snapshot id;
          }
          :: !moves)
    targets;
  let plan =
    {
      Concretize.moves =
        List.sort (fun a b -> compare a.Concretize.server b.Concretize.server) !moves;
      targets = List.sort compare !target_list;
    }
  in
  let shortfalls =
    let base = Formulation.capacity_shortfalls phase1.Phases.formulation phase1.Phases.solution in
    match phase2 with
    | None -> base
    | Some p2 ->
      let selected_ids =
        List.map (fun r -> r.Reservation.id) p2.Phases.formulation.Formulation.reservations
      in
      let p2_shortfalls =
        Formulation.capacity_shortfalls p2.Phases.formulation p2.Phases.solution
      in
      List.filter (fun (rid, _) -> not (List.mem rid selected_ids)) base @ p2_shortfalls
  in
  let gap = phase1.Phases.outcome.Branch_bound.gap in
  (* aggregate B&B kernel counters over both phases: the solver-throughput
     quantity the kernel benchmarks track *)
  let outcomes =
    phase1.Phases.outcome
    :: (match phase2 with Some p2 -> [ p2.Phases.outcome ] | None -> [])
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  {
    phase1;
    phase2;
    plan;
    duration_s = Unix.gettimeofday () -. start;
    shortfalls;
    moves_in_use = Concretize.moves_in_use plan;
    moves_unused = Concretize.moves_unused plan;
    gap_preemptions =
      (if Float.is_finite gap then gap /. params.formulation.Formulation.move_cost_in_use
       else infinity);
    proven_constraints_fixed =
      Float.is_finite gap && gap < params.formulation.Formulation.capacity_slack_cost;
    solver_nodes = sum (fun o -> o.Branch_bound.nodes);
    solver_lp_iterations = sum (fun o -> o.Branch_bound.lp_iterations);
    solver_warm_starts = sum (fun o -> o.Branch_bound.warm_started_nodes);
    solver_dual_restarts = sum (fun o -> o.Branch_bound.dual_restarted_nodes);
    solver_dual_pivots = sum (fun o -> o.Branch_bound.dual_pivots);
    solver_bland_pivots = sum (fun o -> o.Branch_bound.bland_pivots);
    decompose = phase1.Phases.decompose;
    incremental = phase1.Phases.incremental;
    price_table =
      (* phase 1's root-LP duals cover the whole region at the (msb, hw)
         granularity the reactive pools use; phase 2's rack slice does not *)
      (if Array.length phase1.Phases.lp_duals = 0 then None
       else
         Some
           (Solver_state.price_table
              ~round:
                (match phase1.Phases.incremental with
                | Some r -> r.Solver_state.round
                | None -> 0)
              ~row_names:phase1.Phases.compiled.Ras_mip.Model.row_names
              ~duals:phase1.Phases.lp_duals ()));
  }
