(** Persistent cross-round solver state for the continuous optimization
    loop (paper §3.5: the Async Solver runs "continuously", each round
    seeing the previous region perturbed by a little churn).

    A [t] survives across {!Phases.run} / {!Async_solver.solve} rounds and
    caches the previous round's compiled model, optimal root basis and MIP
    incumbent.  The next round diffs its fresh formulation against the
    cache ({!Ras_mip.Incremental}), restarts the root LP from the mapped
    basis, and seeds branch-and-bound with the patched incumbent.  All
    mappings are advisory: the simplex validates the basis before trusting
    it and branch-and-bound checks (and repairs, and may reject) the seed,
    so a state object can never make a round {e wrong} — only faster or,
    at worst, equivalent to a cold solve.

    The state is single-solve-loop: share one [t] per loop, not across
    unrelated models. *)

type round_stats = {
  round : int;  (** 0-based index of the round these stats describe *)
  diff : Ras_mip.Incremental.stats option;
      (** delta sizes vs the previous round; [None] on the cold round 0 *)
  basis_rows_reused : int;
      (** rows whose basic column was carried over from the previous
          round's optimal basis (0 on a cold round) *)
  basis_rows_total : int;  (** rows in this round's model *)
  seed : Ras_mip.Branch_bound.seed_status;
      (** what became of the previous incumbent after patching: accepted
          as-is, feasible only after repair, or rejected *)
  root_pivots : int;  (** simplex pivots the root LP took this round *)
  cold_root_pivots : int;
      (** round-0 baseline root pivot count — the cold-start cost the warm
          restarts are measured against *)
  pivots_saved : int;
      (** [max 0 (cold_root_pivots - root_pivots)] for warm rounds; 0 on
          the cold round *)
}

val basis_reuse_rate : round_stats -> float
(** [basis_rows_reused / basis_rows_total] (0 when the model has no
    rows). *)

val pp_round : Format.formatter -> round_stats -> unit

(** {2 Price table}

    The tier-1 reactive layer's read-only view of the last tier-2 solve:
    root-LP shadow prices keyed by the stable row names.  Supply-row duals
    aggregate to (msb, hardware-subtype) scope — the granularity of
    {!Ras.Reactive}'s availability pools — as the max |dual| over the
    in_use/attr class variants; capacity-row duals key by reservation id.
    Prices are advisory: they only steer {e which} equivalent repair is
    picked, never whether a repair is valid. *)

type price_table = {
  price_round : int;  (** solve round the duals came from *)
  class_prices : (int, float) Hashtbl.t;
      (** [msb * Hardware.count + hw] -> max |supply-row dual|: the marginal
          value tier-2 put on one more server of that scope (0 = slack
          supply, cheap to take from) *)
  capacity_prices : (int, float) Hashtbl.t;
      (** reservation id -> capacity-row dual: how capacity-starved the
          reservation was at the optimum *)
}

val price_table :
  ?round:int -> row_names:string array -> duals:float array -> unit -> price_table
(** Parse a compiled model's row names against the root-LP duals
    ({!Phases.result.lp_duals} order).  Unrecognized rows are skipped;
    mismatched array lengths truncate to the shorter. *)

val class_price : price_table -> msb:int -> hw:int -> float
(** 0 when the scope never appeared in a priced row. *)

val capacity_price : price_table -> int -> float

type t

val create : unit -> t
(** An empty state: the first round through it is a cold solve that only
    populates the cache. *)

val prices : t -> price_table option
(** The price table of the most recent committed round that reached LP
    optimality (later dual-less rounds keep the previous table). *)

val round : t -> int
(** Number of rounds committed so far. *)

val last_round : t -> round_stats option
(** Stats of the most recently committed round. *)

val history : t -> round_stats list
(** All committed rounds, oldest first. *)

type warm = {
  wdiff : Ras_mip.Incremental.stats;
  wbasis : Ras_mip.Simplex.warm_basis option;
      (** previous optimal root basis mapped onto the new model; [None]
          when the cached basis did not structurally match *)
  wrows_reused : int;  (** rows of [wbasis] carried over (see above) *)
  wseed : float array option;
      (** previous incumbent patched into the new variable space; unchecked
          — callers must validate/repair before trusting it *)
}

val prepare : t -> next:Ras_mip.Model.std -> warm option
(** Diffs the cached previous model against [next] and maps the cached
    basis and incumbent across.  [None] when nothing is cached yet (cold
    round).  Does not mutate the state; {!commit} does. *)

val commit :
  t ->
  ?prices:price_table ->
  std:Ras_mip.Model.std ->
  basis:Ras_mip.Simplex.warm_basis option ->
  incumbent:float array option ->
  diff:Ras_mip.Incremental.stats option ->
  rows_reused:int ->
  seed:Ras_mip.Branch_bound.seed_status ->
  root_pivots:int ->
  unit ->
  unit
(** Ends a round: caches [std]/[basis]/[incumbent] for the next one and
    records the round's stats.  Round 0's [root_pivots] becomes the cold
    baseline for [pivots_saved].  A [None] basis leaves the previous cached
    basis unusable (the next round starts its LP cold but still diffs and
    seeds).  [?prices] publishes the round's dual prices for the tier-1
    reactive layer; omitted (dual-less round) keeps the previous table. *)
