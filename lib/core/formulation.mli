(** The RAS MIP model (paper §3.5.3, Table 1), built over symmetry classes.

    Per (class, reservation) pair with a non-zero RRU value there is one
    integer count variable.  The model linearizes the paper's objective:

    - expression (1), stability: an auxiliary move variable per pair with a
      positive current count, [move >= N0 - n], weighted by the movement
      cost (10x higher for in-use servers, §4.6);
    - expressions (2)/(3), spread-wide: a positive-part auxiliary per
      (reservation, rack/MSB) weighted by [beta];
    - expression (4), buffer size: one [z_r >= sum over each MSB] auxiliary
      per reservation weighted by [tau];
    - expression (6), embedded correlated-failure buffer: the same [z_r]
      appears in [total - z_r >= C_r], so surviving the worst MSB loss is a
      hard (but softened) constraint;
    - expression (7), datacenter affinity: two-sided bounds on per-DC
      capacity share;
    - expression (5): per-class supply rows.

    Following §3.5.1, constraints that could block fulfillment (capacity,
    affinity) are {e softened}: slack variables with costs far above any
    legitimate objective term keep the model feasible while making every
    violation visible in the solution, which is also how Fig. 9 measures
    "optimal to fix all softened constraints". *)

type params = {
  move_cost_unused : float;  (** [M_s] for servers without containers *)
  move_cost_in_use : float;  (** [M_s] for in-use servers (10x, §4.6) *)
  spread_penalty : float;  (** [beta] *)
  buffer_cost : float;  (** [tau] *)
  capacity_slack_cost : float;  (** softening cost per missing RRU *)
  affinity_slack_cost : float;
  assignment_cost : float;
      (** tiny per-assigned-server cost so optima do not hoard free servers *)
  wear_penalty : float;
      (** §5.2 IO-aware placement: objective cost per (wear bucket x
          io_intensity) of an assigned server *)
}

val default_params : params

type pair = { cls : Symmetry.cls; res : Reservation.t; var : Ras_mip.Model.var }

type t = {
  model : Ras_mip.Model.t;
  symmetry : Symmetry.t;
  reservations : Reservation.t list;
  pairs : pair list;  (** assignment variables in creation order *)
  capacity_slack : (int * Ras_mip.Model.var) list;  (** reservation id -> slack *)
  buffer_var : (int * Ras_mip.Model.var) list;  (** reservation id -> z_r *)
  aux_defs : (Ras_mip.Model.var * Ras_mip.Lin_expr.t list) list;
      (** auxiliary variables with the expressions they upper-bound, in
          ascending variable order (see {!encode}) *)
  params : params;
  rack_level : bool;
}

val build :
  ?params:params ->
  ?rack_level:bool ->
  Symmetry.t ->
  Reservation.t list ->
  t
(** Rack goals (alpha_K spread) are only emitted when [rack_level] is set
    and the symmetry build is rack-keyed. *)

val num_assignment_vars : t -> int

type assignment = { counts : (Symmetry.cls * Reservation.t * int) list }
(** How many servers of each class go to each reservation (pairs with a zero
    count are omitted). *)

val decode : t -> float array -> assignment
(** Read counts out of a solver solution vector. *)

val capacity_shortfalls : t -> float array -> (int * float) list
(** Softened capacity violations per reservation id (only positive ones) —
    the "broken constraints" Fig. 9 talks about. *)

val movement_units : t -> float array -> in_use:bool -> float
(** Total servers moved out of their current owner, split by in-use flag —
    feeds Fig. 16. *)

val encode : t -> (pair -> int) -> float array
(** Build a complete, feasible solution vector from per-pair assignment
    counts (auxiliaries take their cheapest feasible values).  The counts
    must respect class supply; this is not re-checked here. *)

val status_quo : t -> float array
(** {!encode} of the current assignment — the do-nothing solution.  Because
    capacity constraints are softened, this is always feasible, and it is
    handed to branch-and-bound as the initial incumbent so a solve can only
    improve on doing nothing. *)

val round_lp : t -> float array -> float array
(** Largest-remainder rounding of an LP-relaxation solution into a feasible
    integral one ({!encode}d).  This is the primal heuristic that makes
    timed-out solves useful: its objective is typically within a few
    movement units of the LP bound (Fig. 9's quality-gap regime). *)

val repair : t -> float array -> float array
(** Greedy capacity repair of an integral solution: tops up reservations
    left short (e.g. by rounding scarce hardware classes) from unassigned
    supply first, then from donors that stay above their own capacity. *)

val partition_vars : t -> parts:int -> int array
(** POP-style partition map for {!Ras_mip.Decompose}: entry [v] is the
    partition (in [0, parts)]) of model variable [v].  Reservations are
    dealt round-robin across partitions in decreasing [capacity_rru] order;
    assignment, slack and buffer variables follow their reservation, and
    auxiliary variables follow the variables their definitions reference.
    Raises [Invalid_argument] when [parts < 1]. *)
