(** Solver input: an immutable view of broker state plus the reservation
    set, taken at the start of a solve (Fig. 6 step 2).

    Servers that are down with an {e unplanned} event are excluded from the
    assignable pool (the availability constraint, §3.5.1); servers under
    planned maintenance remain assignable because their replacement capacity
    is pre-baked into reservations.

    Server state is stored columnar — one int or byte column per field,
    indexed by server id — so a region-scale snapshot (10⁶ servers) costs a
    handful of flat arrays rather than a million per-server records.  Use
    the [*_at]/[*_code] accessors on hot paths; {!view} materializes a
    {!server_view} on demand. *)

type server_view = {
  server : Ras_topology.Region.server;
  current : Ras_broker.Broker.owner;
      (** home owner: elastic lending is resolved back to the lender before
          the snapshot is taken *)
  in_use : bool;
  usable : bool;
  attr : int;
      (** generic placement attribute (0 = none): extra server state the
          formulation prices, e.g. the SSD wear bucket of §5.2.  It is part
          of the symmetry key, so non-zero attributes deliberately break
          server symmetry — exactly the cost the paper warns new placement
          goals carry *)
}

type t = {
  region : Ras_topology.Region.t;
  current : int array;  (** {!Ras_broker.Broker.owner_code} per server id *)
  in_use : Bytes.t;  (** 0 / 1 per server id *)
  usable : Bytes.t;  (** 0 / 1 per server id *)
  attr : int array;
  reservations : Reservation.t list;
}

val take :
  ?home_of:(int -> Ras_broker.Broker.owner option) ->
  ?attr_of:(int -> int) ->
  Ras_broker.Broker.t ->
  Reservation.t list ->
  t
(** [home_of id] resolves an elastically-lent server to its home owner
    (provided by the Online Mover); defaults to no lending.  [attr_of id]
    supplies the placement attribute (defaults to 0 everywhere).  Capture
    reads the broker's columns directly: no per-server allocation. *)

val num_servers : t -> int

val view : t -> int -> server_view
(** Materializes one server's columns as a {!server_view}. *)

val server : t -> int -> Ras_topology.Region.server

val current_code : t -> int -> int

val current : t -> int -> Ras_broker.Broker.owner

val in_use_at : t -> int -> bool

val usable_at : t -> int -> bool

val attr_at : t -> int -> int

val hw_index_at : t -> int -> int
(** Hardware-catalog index of the server — an array read, no record
    materialization (the admission hot path's accessor). *)

val usable_hw_histogram : t -> int array
(** Usable-server count per hardware-catalog index (length
    {!Ras_topology.Hardware.count}).  One integer pass over the columns;
    admission checks fold supply over this instead of evaluating a
    per-server RRU function 10⁶ times. *)

val with_current : t -> int array -> t
(** A copy of the snapshot with the current-owner column replaced (used to
    re-snapshot hypothetical assignments).  Raises [Invalid_argument] on a
    length mismatch. *)

val iter_views : t -> f:(server_view -> unit) -> unit

val fold_views : t -> init:'a -> f:('a -> server_view -> 'a) -> 'a

val usable_servers : t -> server_view list

val owned_by_code : Reservation.t -> int -> Ras_topology.Hardware.t -> bool
(** [owned_by_code res code hw]: does owner-code [code] on a server of
    hardware [hw] place it in reservation [res]?  Buffer reservations own
    [Shared_buffer] servers of their hardware category. *)

val owned_by : Reservation.t -> server_view -> bool

val current_rru : t -> Reservation.t -> float
(** Usable RRU currently bound to the reservation. *)

val rru_by_msb : t -> Reservation.t -> float array
(** Usable RRU of the reservation per MSB. *)

val rru_by_dc : t -> Reservation.t -> float array

val max_msb_share : t -> Reservation.t -> float
(** Largest per-MSB fraction of the reservation's current capacity — the
    quantity Fig. 12 tracks; [nan] when the reservation holds nothing. *)
