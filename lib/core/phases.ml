module Model = Ras_mip.Model
module Simplex = Ras_mip.Simplex
module Branch_bound = Ras_mip.Branch_bound

type timing = {
  ras_build_s : float;
  solver_build_s : float;
  initial_state_s : float;
  mip_s : float;
}

let total_s t = t.ras_build_s +. t.solver_build_s +. t.initial_state_s +. t.mip_s

type result = {
  timing : timing;
  formulation : Formulation.t;
  outcome : Branch_bound.outcome;
  solution : float array;
  grouped_vars : int;
  raw_vars : int;
  rows : int;
  setup_bytes : int;
  lp_duals : float array;
  compiled : Model.std;
  decompose : Ras_mip.Decompose.stats option;
  incremental : Solver_state.round_stats option;
}

let now () = Unix.gettimeofday ()

let run ?params ?(mip_time_limit = 60.0) ?(mip_node_limit = 2000)
    ?(mip_gap_rel = Branch_bound.default_options.Branch_bound.gap_rel)
    ?(mip_stall_nodes = 0) ?(rack_level = false) ?include_server ?decompose ?state
    snapshot reservations =
  let words_before = Gc.allocated_bytes () in
  let t0 = now () in
  let symmetry = Symmetry.build ~rack_level ?include_server snapshot in
  let formulation = Formulation.build ?params ~rack_level symmetry reservations in
  let t1 = now () in
  let std = Model.compile formulation.Formulation.model in
  let t2 = now () in
  let words_after = Gc.allocated_bytes () in
  let status_quo = Formulation.status_quo formulation in
  (* Cross-round warm start: diff against the cached previous round and map
     its optimal root basis and incumbent across (see {!Solver_state}).
     Everything mapped is advisory — the simplex validates the basis and
     falls back to a cold start on any mismatch. *)
  let warm = match state with None -> None | Some st -> Solver_state.prepare st ~next:std in
  let lp =
    match warm with
    | Some { Solver_state.wbasis = Some b; _ } -> Simplex.solve ~basis:b std
    | Some { Solver_state.wbasis = None; _ } | None -> Simplex.solve std
  in
  (* Primal heuristic: round the LP relaxation into a feasible integral
     solution; keep whichever of it and the status quo is cheaper. *)
  let objective_of x =
    let acc = ref std.Model.obj_offset in
    for j = 0 to std.Model.nvars - 1 do
      acc := !acc +. (std.Model.obj.(j) *. x.(j))
    done;
    !acc
  in
  let initial =
    match lp with
    | Simplex.Optimal { x; _ } ->
      let repaired = Formulation.repair formulation (Formulation.round_lp formulation x) in
      if objective_of repaired <= objective_of status_quo then repaired else status_quo
    | Simplex.Infeasible _ | Simplex.Unbounded | Simplex.Iteration_limit _ -> status_quo
  in
  (* The previous round's incumbent, patched into this round's variable
     space, competes with the LP-rounding incumbent.  Stale seeds degrade
     gracefully: checked as-is, then once through the formulation-aware
     repair, and dropped (with the outcome recorded) if still infeasible. *)
  let seed_status = ref Branch_bound.Seed_none in
  let initial =
    match warm with
    | Some { Solver_state.wseed = Some s; _ } -> (
      match Model.check_solution std s with
      | Ok () ->
        seed_status := Branch_bound.Seed_accepted;
        if objective_of s <= objective_of initial then s else initial
      | Error _ -> (
        let repaired = Formulation.repair formulation s in
        match Model.check_solution std repaired with
        | Ok () ->
          seed_status := Branch_bound.Seed_repaired;
          if objective_of repaired <= objective_of initial then repaired else initial
        | Error _ ->
          seed_status := Branch_bound.Seed_rejected;
          initial))
    | Some { Solver_state.wseed = None; _ } | None -> initial
  in
  let t3 = now () in
  let lp_bound = match lp with Simplex.Optimal { obj; _ } -> obj | _ -> neg_infinity in
  let decompose_stats = ref None in
  let outcome =
    if mip_node_limit <= 0 then begin
      (* heuristic-only mode for long simulations: the LP-guided rounding /
         repair / spread pipeline is the solution, with the LP relaxation as
         the proven bound *)
      let best_bound = lp_bound in
      let objective = objective_of initial in
      {
        Branch_bound.status = Branch_bound.Feasible;
        solution = Some initial;
        objective;
        best_bound;
        gap = objective -. best_bound;
        nodes = 0;
        lp_iterations = 0;
        warm_started_nodes = 0;
        dual_restarted_nodes = 0;
        dual_pivots = 0;
        bound_flips = 0;
        bland_pivots = 0;
        seed = Branch_bound.Seed_none;
        elapsed = 0.0;
      }
    end
    else begin
      let options =
        {
          Branch_bound.default_options with
          Branch_bound.time_limit = mip_time_limit;
          node_limit = mip_node_limit;
          gap_rel = mip_gap_rel;
          stall_node_limit = mip_stall_nodes;
          initial = Some initial;
          (* hand the root LP's optimal basis to the root node: the tree
             search re-optimizes it under the integer-tightened bounds via
             the dual phase instead of re-solving the root from scratch *)
          root_basis =
            (match lp with Simplex.Optimal { basis; _ } -> Some basis | _ -> None);
        }
      in
      match decompose with
      | Some k when k > 1 ->
        (* POP-style split: solve the k partitioned MIPs concurrently, then
           run the merged solution through the formulation-aware repair and
           keep whichever of it and the initial incumbent is cheaper.  The
           monolith root LP stays the proven bound — subproblem bounds do
           not compose into one. *)
        let part = Formulation.partition_vars formulation ~parts:k in
        let dr =
          Ras_mip.Decompose.solve ~options ~num_parts:k
            ~var_part:(fun v -> part.(v))
            std
        in
        decompose_stats := Some dr.Ras_mip.Decompose.stats;
        let out = dr.Ras_mip.Decompose.outcome in
        let best =
          match out.Branch_bound.solution with
          | Some x ->
            let repaired = Formulation.repair formulation x in
            if objective_of repaired <= objective_of initial then repaired else initial
          | None -> initial
        in
        let objective = objective_of best in
        {
          out with
          Branch_bound.status = Branch_bound.Feasible;
          solution = Some best;
          objective;
          best_bound = lp_bound;
          gap = objective -. lp_bound;
        }
      | _ -> Branch_bound.solve ~options std
    end
  in
  let t4 = now () in
  let solution =
    match outcome.Branch_bound.solution with Some x -> x | None -> initial
  in
  let incremental =
    match state with
    | None -> None
    | Some st ->
      let root_basis, root_pivots =
        match lp with
        | Simplex.Optimal { basis; iterations; _ } -> (Some basis, iterations)
        | _ -> (None, 0)
      in
      let prices =
        match lp with
        | Simplex.Optimal { duals; _ } ->
          Some
            (Solver_state.price_table ~round:(Solver_state.round st)
               ~row_names:std.Model.row_names ~duals ())
        | _ -> None
      in
      Solver_state.commit st ?prices ~std ~basis:root_basis ~incumbent:(Some solution)
        ~diff:(Option.map (fun w -> w.Solver_state.wdiff) warm)
        ~rows_reused:(match warm with Some w -> w.Solver_state.wrows_reused | None -> 0)
        ~seed:!seed_status ~root_pivots ();
      Solver_state.last_round st
  in
  {
    timing =
      {
        ras_build_s = t1 -. t0;
        solver_build_s = t2 -. t1;
        initial_state_s = t3 -. t2;
        mip_s = t4 -. t3;
      };
    formulation;
    outcome;
    solution;
    grouped_vars = Symmetry.grouped_variable_count symmetry ~reservations;
    raw_vars = Symmetry.raw_variable_count symmetry ~reservations;
    rows = std.Model.nrows;
    setup_bytes = int_of_float (words_after -. words_before);
    lp_duals = (match lp with Simplex.Optimal { duals; _ } -> duals | _ -> [||]);
    compiled = std;
    decompose = !decompose_stats;
    incremental;
  }
