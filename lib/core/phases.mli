(** One solve phase, instrumented with the paper's time breakdown (Fig. 8):

    - {e RAS build}: symmetry grouping plus construction of RAS's objectives
      and constraints ({!Symmetry.build} + {!Formulation.build});
    - {e solver build}: translation to the solver's standard form
      ({!Ras_mip.Model.compile});
    - {e initial state}: seeding the incumbent with the current assignment
      and the initial LP relaxation solve;
    - {e MIP}: branch-and-bound. *)

type timing = {
  ras_build_s : float;
  solver_build_s : float;
  initial_state_s : float;
  mip_s : float;
}

val total_s : timing -> float

type result = {
  timing : timing;
  formulation : Formulation.t;
  outcome : Ras_mip.Branch_bound.outcome;
  solution : float array;
      (** best incumbent; falls back to the status-quo encoding when the MIP
          found nothing better (softened constraints make it feasible) *)
  grouped_vars : int;  (** assignment variables after symmetry grouping *)
  raw_vars : int;  (** variables a per-server formulation would have *)
  rows : int;
  setup_bytes : int;
      (** bytes allocated during build — the Fig. 11
          memory proxy *)
  lp_duals : float array;
      (** root-LP shadow prices, one per compiled row (empty when the root
          LP did not reach optimality); {!Explain.shadow_prices} turns them
          into per-constraint price reports *)
  compiled : Ras_mip.Model.std;  (** the compiled model the solve ran on *)
  decompose : Ras_mip.Decompose.stats option;
      (** present when the solve ran POP-decomposed ([?decompose] with
          [k > 1] and a positive node limit) *)
  incremental : Solver_state.round_stats option;
      (** present when the solve ran with [?state]: this round's
          cross-round diff sizes, basis-reuse rate, seed outcome and
          pivots saved (mirrors {!Solver_state.last_round}) *)
}

val run :
  ?params:Formulation.params ->
  ?mip_time_limit:float ->
  ?mip_node_limit:int ->
  ?mip_gap_rel:float ->
  ?mip_stall_nodes:int ->
  ?rack_level:bool ->
  ?include_server:(Snapshot.server_view -> bool) ->
  ?decompose:int ->
  ?state:Solver_state.t ->
  Snapshot.t ->
  Reservation.t list ->
  result
(** [?decompose:k] with [k > 1] partitions the formulation with
    {!Formulation.partition_vars} and solves the [k] subproblems
    concurrently via {!Ras_mip.Decompose} (POP-style, one domain each),
    merging and repairing the result; the monolith root LP remains the
    reported bound.  Ignored when [k <= 1] or in heuristic-only mode
    ([mip_node_limit <= 0]).

    [?mip_gap_rel] sets the branch-and-bound relative optimality gap
    (default {!Ras_mip.Branch_bound.default_options}'s near-exact 1e-9).
    The continuous loop runs at an interactive tolerance (e.g. 1e-3): with
    small churn, the previous round's patched incumbent usually proves
    within tolerance at the root and the tree search terminates without
    branching.  [?mip_stall_nodes] forwards
    {!Ras_mip.Branch_bound.options.stall_node_limit} — stop once the
    incumbent has not improved for that many nodes (0, the default,
    disables) — which is the stopping rule that actually fires on the
    soft-penalty allocation MIPs, whose integrality gap never closes.

    [?state] threads persistent cross-round solver state through the
    continuous loop: the previous round's optimal root basis warm-starts
    this round's root LP (via the {!Ras_mip.Incremental} name-keyed diff),
    and the previous incumbent — patched for departed servers — competes
    to seed branch-and-bound.  The state is updated in place at the end of
    the solve.  One state object per solve loop; sharing it across
    unrelated model families wastes the cache but stays correct (every
    mapped artifact is validated before use). *)
