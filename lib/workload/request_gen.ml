module Rng = Ras_stats.Rng
module Dist = Ras_stats.Dist
module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware

type sized_request = { units : float; hw_types : int }

(* Fig. 4: most requests can be served by exactly one hardware type (the
   newest generation) or by ~8 types; a small tail accepts 10-12.  Sizes are
   log-normal, median a few hundred units, clipped to [1, 30000]. *)
let paper_distribution rng ~n =
  let flexibility_weights =
    [| 0.28; 0.04; 0.05; 0.06; 0.07; 0.06; 0.08; 0.22; 0.05; 0.04; 0.03; 0.02 |]
  in
  let sample () =
    let hw_types = 1 + Dist.categorical rng flexibility_weights in
    let units = Dist.lognormal rng ~mu:(log 300.0) ~sigma:1.6 in
    let units = Float.max 1.0 (Float.min 30_000.0 (Float.round units)) in
    { units; hw_types }
  in
  List.init n (fun _ -> sample ())

let scenario rng ~region ~services ~target_utilization =
  let services = Array.of_list services in
  let n = Array.length services in
  if n = 0 then []
  else begin
    (* Zipf-weighted virtual assignment of every server to a service that
       accepts it; the accumulated RRU per service is a capacity demand that
       is feasible by construction (the virtual assignment realizes it). *)
    let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) 0.8) in
    let acc = Array.make n 0.0 in
    let shuffled = Array.copy region.Region.servers in
    Rng.shuffle rng shuffled;
    (* candidate weights depend only on the server's hardware subtype, so
       cache one array per subtype instead of allocating an O(|services|)
       array per server — at region scale (10^6 servers) the latter dominates
       generation time.  The RNG sequence is unchanged: one categorical draw
       per acceptable server either way. *)
    let by_hw = Array.make Hw.count None in
    let weights_for (hw : Hw.t) =
      match by_hw.(hw.Hw.index) with
      | Some cached -> cached
      | None ->
        let candidate_weights =
          Array.init n (fun i ->
              if Service.rru_of services.(i) hw > 0.0 then weights.(i) else 0.0)
        in
        let any = Array.exists (fun w -> w > 0.0) candidate_weights in
        let cached = (candidate_weights, any) in
        by_hw.(hw.Hw.index) <- Some cached;
        cached
    in
    Array.iter
      (fun s ->
        let candidate_weights, any = weights_for s.Region.hw in
        if any then begin
          let i = Dist.categorical rng candidate_weights in
          acc.(i) <- acc.(i) +. Service.rru_of services.(i) s.Region.hw
        end)
      shuffled;
    let requests = ref [] in
    for i = n - 1 downto 0 do
      let rru = target_utilization *. acc.(i) in
      if rru >= 1.0 then begin
        let service = services.(i) in
        (* a +/- theta affinity window only makes sense when it is wider
           than one server's RRU value; small services skip the constraint *)
        let dc_affinity =
          match service.Service.data_locality with
          | Some dc when dc < region.Region.num_dcs && rru >= 15.0 -> [ (dc, 0.8) ]
          | Some _ | None -> []
        in
        (* reservations worth only a server or two cannot meaningfully embed
           an MSB-loss buffer at simulation scale; like the paper's small
           count-based requests they take plain capacity.  Large storage
           services use quorum spread (paragraph 3.3.2) instead of an
           embedded buffer: their redundancy absorbs the MSB loss. *)
        let is_storage = service.Service.profile = Service.Data_store in
        let embedded_buffer = rru >= 10.0 && not is_storage in
        let hard_msb_cap = if is_storage && rru >= 10.0 then Some (1.0 /. 3.0) else None in
        (* alpha_F is tunable per reservation (§3.5.3); a spread target finer
           than ~2 servers per MSB is unreachable integrally, so small
           reservations get a proportionally coarser limit *)
        let msb_spread_limit = Float.max 0.1 (Float.min 0.5 (6.0 /. rru)) in
        let req =
          Capacity_request.make ~id:service.Service.id ~service ~rru ~dc_affinity
            ~embedded_buffer ?hard_msb_cap ~msb_spread_limit ()
        in
        requests := req :: !requests
      end
    done;
    !requests
  end

let arrivals_over rng ~days ~mean_per_workday =
  let arrivals = ref [] in
  for day = 0 to days - 1 do
    let weekday = day mod 7 < 5 in
    let mean = if weekday then mean_per_workday else mean_per_workday *. 0.15 in
    let count = Dist.poisson rng ~mean in
    for _ = 1 to count do
      let hour =
        if weekday then Float.max 7.0 (Float.min 21.0 (Dist.normal rng ~mean:13.5 ~stddev:2.5))
        else Dist.uniform rng ~lo:0.0 ~hi:24.0
      in
      arrivals := ((float_of_int day *. 24.0) +. hour) :: !arrivals
    done
  done;
  List.sort compare !arrivals
